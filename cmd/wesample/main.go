// Command wesample draws node samples from an edge-list graph through the
// simulated restricted-access interface, with either a traditional
// random-walk sampler or WALK-ESTIMATE, and reports the sampled nodes,
// query cost, and an AVG-degree estimate.
//
// Usage:
//
//	wesample -in graph.txt -sampler we -design srw -count 100
//	wesample -in graph.txt -sampler we -design srw -count 100 -workers 8
//	wesample -in graph.txt -sampler geweke -design mhrw -count 100
//	wesample -in graph.txt -sampler longrun -burnin 500 -thin 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	wnw "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "edge-list file (required)")
		sampler = flag.String("sampler", "we", "we | geweke | fixed | longrun")
		design  = flag.String("design", "srw", "input design: srw | mhrw")
		count   = flag.Int("count", 100, "number of samples")
		start   = flag.Int("start", -1, "start node (default: max-degree node)")
		walkLen = flag.Int("walklen", 0, "WE walk length (default 2·diameter+1)")
		hops    = flag.Int("hops", 2, "WE initial-crawl depth")
		burnin  = flag.Int("burnin", 200, "burn-in steps (fixed, longrun)")
		thin    = flag.Int("thin", 1, "thinning (longrun)")
		geweke  = flag.Float64("geweke", 0.1, "Geweke threshold")
		maxStep = flag.Int("maxsteps", 2000, "max steps per baseline walk")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 1, "parallel estimation workers (we sampler only)")
		quiet   = flag.Bool("quiet", false, "suppress per-sample output")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "wesample: -in is required")
		os.Exit(2)
	}
	if err := run(*in, *sampler, *design, *count, *start, *walkLen, *hops,
		*burnin, *thin, *geweke, *maxStep, *seed, *workers, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "wesample:", err)
		os.Exit(1)
	}
}

func run(in, samplerName, designName string, count, start, walkLen, hops,
	burnin, thin int, geweke float64, maxStep int, seed int64, workers int, quiet bool) error {
	g, err := wnw.LoadEdgeList(in)
	if err != nil {
		return err
	}
	d, err := wnw.DesignByName(designName)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	if start < 0 {
		for v := 0; v < g.NumNodes(); v++ {
			if start < 0 || g.Degree(v) > g.Degree(start) {
				start = v
			}
		}
	}
	net := wnw.NewNetwork(g)
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)

	var res wnw.SampleResult
	switch samplerName {
	case "we":
		if walkLen <= 0 {
			walkLen = 2*g.EstimateDiameter(4, rng) + 1
		}
		s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
			Design:      d,
			Start:       start,
			WalkLength:  walkLen,
			UseCrawl:    true,
			CrawlHops:   hops,
			UseWeighted: true,
		}, rng)
		if err != nil {
			return err
		}
		if workers > 1 {
			res, err = s.SampleNParallel(count, workers)
		} else {
			res, err = s.SampleN(count)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "acceptance-rate %.4f, steps %d (fwd %d / bwd %d)\n",
			s.AcceptanceRate(), s.TotalSteps(), s.ForwardSteps(), s.BackwardSteps())
	case "geweke":
		res, err = wnw.ManyShortRuns(c, d, start, count, wnw.Geweke{Threshold: geweke}, maxStep, rng)
		if err != nil {
			return err
		}
	case "fixed":
		res, err = wnw.ManyShortRuns(c, d, start, count, wnw.FixedBurnIn{N: burnin}, maxStep+burnin, rng)
		if err != nil {
			return err
		}
	case "longrun":
		res, err = wnw.OneLongRun(c, d, start, burnin, count, thin, rng)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown sampler %q", samplerName)
	}

	if !quiet {
		for i, v := range res.Nodes {
			fmt.Printf("%d %d %d\n", v, res.Steps[i], res.CostAfter[i])
		}
	}
	est, err := wnw.EstimateMean(c, d, wnw.AttrDegree, res.Nodes)
	if err != nil {
		return err
	}
	truth := g.AvgDegree()
	fmt.Fprintf(os.Stderr, "samples %d, query-cost %d, AVG-degree estimate %.4f (truth %.4f, rel-err %.4f)\n",
		res.Len(), c.TotalQueries(), est, truth, wnw.RelativeError(est, truth))
	return nil
}
