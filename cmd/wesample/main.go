// Command wesample draws node samples from a graph through the simulated
// restricted-access interface, with either a traditional random-walk
// sampler or WALK-ESTIMATE, and reports the sampled nodes, query cost, and
// an AVG-degree estimate.
//
// The graph is served through a pluggable access backend: the in-memory
// default, a memory-mapped binary CSR file (million-node graphs open in
// O(1) and sample without holding edges on the heap), or a simulated remote
// API that charges wall-clock latency per round trip — which is how the
// paper's "walk, not wait" savings become measurable as seconds, not just
// query counts.
//
// Usage:
//
//	wesample -in graph.txt -sampler we -design srw -count 100
//	wesample -in graph.txt -sampler we -design srw -count 100 -workers 8
//	wesample -in graph.csr -backend disk -sampler we -count 100
//	wesample -in graph.txt -backend sim -latency 50ms -jitter 10ms -workers 8
//	wesample -in graph.txt -sampler geweke -design mhrw -count 100
//	wesample -in graph.txt -sampler longrun -burnin 500 -thin 5
//	wesample -in graph.txt -faultrate 0.01 -retries 8 -count 100
//
// With -faultrate > 0 (or -outage) the backend is wrapped with a seeded
// deterministic fault injector plus the retry/backoff/circuit-breaker
// middleware: transient faults are absorbed below the sampler (the sample
// sequence stays bit-identical to a fault-free run under the same -seed),
// and an unrecoverable backend failure aborts the run with a typed error
// while the samples drawn so far are still printed.
//
// Binary CSR inputs (written by wegen -format csr) are auto-detected; with
// -backend mem they are decoded to the heap, with -backend disk they are
// memory-mapped in place.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	wnw "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "graph file: edge list or binary CSR (required)")
		backend = flag.String("backend", "mem", "access backend: mem | disk | sim")
		latency = flag.Duration("latency", 50*time.Millisecond, "simulated per-round-trip latency (sim backend)")
		jitter  = flag.Duration("jitter", 0, "simulated latency jitter, uniform in ±jitter (sim backend)")
		fanout  = flag.Int("fanout", 0, "simulated concurrent connections for batch requests (sim backend; 0 = default)")
		sampler = flag.String("sampler", "we", "we | geweke | fixed | longrun")
		design  = flag.String("design", "srw", "input design: srw | mhrw")
		count   = flag.Int("count", 100, "number of samples")
		start   = flag.Int("start", -1, "start node (default: max-degree node)")
		walkLen = flag.Int("walklen", 0, "WE walk length (default 2·diameter+1)")
		hops    = flag.Int("hops", 2, "WE initial-crawl depth")
		burnin  = flag.Int("burnin", 200, "burn-in steps (fixed, longrun)")
		thin    = flag.Int("thin", 1, "thinning (longrun)")
		geweke  = flag.Float64("geweke", 0.1, "Geweke threshold")
		maxStep = flag.Int("maxsteps", 2000, "max steps per baseline walk")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 1, "parallel estimation workers (we sampler only)")
		quiet   = flag.Bool("quiet", false, "suppress per-sample output")

		faultRate = flag.Float64("faultrate", 0, "per-round-trip backend fault probability in [0,1) (0 disables injection)")
		faultSeed = flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
		outage    = flag.String("outage", "", "full-outage window start+dur from startup, e.g. 2s+500ms")
		retries   = flag.Int("retries", 0, "max retries per backend access (0 = policy default)")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "wesample: -in is required")
		os.Exit(2)
	}
	faults := wnw.FaultOptions{Rate: *faultRate, Seed: *faultSeed, Outage: *outage, Retries: *retries}
	if err := run(*in, *backend, *latency, *jitter, *fanout, faults, *sampler, *design,
		*count, *start, *walkLen, *hops, *burnin, *thin, *geweke, *maxStep,
		*seed, *workers, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "wesample:", err)
		os.Exit(1)
	}
}

func run(in, backendName string, latency, jitter time.Duration, fanout int,
	faults wnw.FaultOptions, samplerName, designName string, count, start, walkLen, hops,
	burnin, thin int, geweke float64, maxStep int, seed int64, workers int, quiet bool) error {
	be, cleanup, err := wnw.OpenBackend(in, backendName, latency, jitter, fanout)
	if err != nil {
		return err
	}
	defer cleanup()
	be, fsim, resb, err := wnw.WrapFaults(be, faults)
	if err != nil {
		return err
	}
	// Under fault injection the run gets a cancellable context carrying the
	// failure-cancel hook: when the resilience layer gives up, the sampler's
	// context check aborts the run with the typed cause.
	ctx := context.Background()
	if resb != nil {
		cctx, cancel := context.WithCancelCause(context.Background())
		ctx = wnw.WithFailureCancel(cctx, cancel)
	}
	reportFaults := func() {
		if fsim == nil {
			return
		}
		st, rs := fsim.Stats(), resb.Stats()
		fmt.Fprintf(os.Stderr, "faults: %d/%d round trips faulted; retries %d (absorbed %d, failures %d), breaker %s\n",
			st.Total(), st.Attempts, rs.Retries, rs.Absorbed, rs.Failures, rs.Breaker)
	}
	d, err := wnw.DesignByName(designName)
	if err != nil {
		return err
	}
	// All walk-driving randomness comes from the xoshiro256++ generator:
	// forward walks, backward estimates, and the traditional baselines
	// draw from one fast stream instead of math/rand's table-walking
	// source. Seeded identically, runs remain reproducible — but sample
	// sequences differ from pre-migration builds (the stream changed).
	rng := wnw.NewFastRNG(seed)
	net := wnw.NewNetworkOn(be)
	g := net.Graph()
	if start < 0 {
		for v := 0; v < g.NumNodes(); v++ {
			if start < 0 || g.Degree(v) > g.Degree(start) {
				start = v
			}
		}
	}
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	c.BindContext(ctx)

	began := time.Now()
	var res wnw.SampleResult
	switch samplerName {
	case "we":
		if walkLen <= 0 {
			// EstimateDiameter's double-sweep BFS keeps math/rand (its
			// signature predates the RNG facade); it only picks the
			// default walk length, not any sample.
			walkLen = 2*g.EstimateDiameter(4, rand.New(rand.NewSource(seed))) + 1
		}
		s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
			Design:      d,
			Start:       start,
			WalkLength:  walkLen,
			UseCrawl:    true,
			CrawlHops:   hops,
			UseWeighted: true,
		}, rng)
		if err != nil {
			return err
		}
		if workers > 1 {
			res, err = s.SampleNParallelCtx(ctx, count, workers)
		} else {
			res, err = s.SampleNCtx(ctx, count)
		}
		if err != nil {
			var bu *wnw.BackendUnavailableError
			if errors.As(err, &bu) {
				fmt.Fprintf(os.Stderr, "backend unavailable (%s after %d attempts); %d of %d samples drawn before the failure:\n",
					bu.Reason, bu.Attempts, res.Len(), count)
				if !quiet {
					for i, v := range res.Nodes {
						fmt.Printf("%d %d %d\n", v, res.Steps[i], res.CostAfter[i])
					}
				}
				reportFaults()
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "acceptance-rate %.4f, steps %d (fwd %d / bwd %d)\n",
			s.AcceptanceRate(), s.TotalSteps(), s.ForwardSteps(), s.BackwardSteps())
	case "geweke":
		res, err = wnw.ManyShortRuns(c, d, start, count, wnw.Geweke{Threshold: geweke}, maxStep, rng)
		if err != nil {
			return err
		}
	case "fixed":
		res, err = wnw.ManyShortRuns(c, d, start, count, wnw.FixedBurnIn{N: burnin}, maxStep+burnin, rng)
		if err != nil {
			return err
		}
	case "longrun":
		res, err = wnw.OneLongRun(c, d, start, burnin, count, thin, rng)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown sampler %q", samplerName)
	}
	elapsed := time.Since(began)

	if !quiet {
		for i, v := range res.Nodes {
			fmt.Printf("%d %d %d\n", v, res.Steps[i], res.CostAfter[i])
		}
	}
	est, err := wnw.EstimateMean(c, d, wnw.AttrDegree, res.Nodes)
	if err != nil {
		return err
	}
	truth := g.AvgDegree()
	fmt.Fprintf(os.Stderr, "samples %d, query-cost %d, AVG-degree estimate %.4f (truth %.4f, rel-err %.4f)\n",
		res.Len(), c.TotalQueries(), est, truth, wnw.RelativeError(est, truth))
	if sim, ok := be.(*wnw.RemoteSim); ok {
		fmt.Fprintf(os.Stderr, "sim backend: %d round trips at %v±%v (%v simulated latency charged), wall-clock %v (%.1f ms/sample)\n",
			sim.RoundTrips(), latency, jitter, sim.SimulatedWait().Round(time.Millisecond),
			elapsed.Round(time.Millisecond),
			float64(elapsed.Milliseconds())/float64(max(1, res.Len())))
	}
	reportFaults()
	return nil
}
