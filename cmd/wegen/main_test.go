package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	wnw "repro"
)

func TestRunAllModels(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		model string
		n, m  int
		p     float64
	}{
		{"ba", 100, 3, 0},
		{"hk", 100, 3, 0.5},
		{"cycle", 20, 0, 0},
		{"hypercube", 16, 0, 0},
		{"barbell", 11, 0, 0},
		{"tree", 0, 3, 0},
		{"complete", 8, 0, 0},
		{"star", 9, 0, 0},
		{"gnp", 40, 0, 0.2},
		{"gnm", 40, 60, 0},
		{"regular", 20, 4, 0},
		{"smallsf", 0, 0, 0},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.model+".txt")
		if err := run(c.model, c.n, c.m, c.p, 0.1, 1, out, "txt", false); err != nil {
			t.Fatalf("%s: %v", c.model, err)
		}
		g, err := wnw.LoadEdgeList(out)
		if err != nil {
			t.Fatalf("%s: load: %v", c.model, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", c.model)
		}
	}
}

func TestRunDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, model := range []string{"gplus", "yelp", "twitter"} {
		out := filepath.Join(dir, model+".txt")
		if err := run(model, 0, 0, 0, 0.01, 2, out, "txt", false); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
		if _, err := os.Stat(out); err != nil {
			t.Fatalf("%s: %v", model, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 10, 2, 0, 0.5, 1, "", "txt", false); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("unknown model error = %v", err)
	}
	// Generator panics surface as errors.
	if err := run("cycle", 2, 0, 0, 0.5, 1, "", "txt", false); err == nil {
		t.Fatal("tiny cycle should error")
	}
	// Bad dataset scale.
	if err := run("gplus", 0, 0, 0, 5.0, 1, "", "txt", false); err == nil {
		t.Fatal("bad scale should error")
	}
	// Unwritable output path.
	if err := run("ba", 10, 2, 0, 0.5, 1, "/nonexistent-dir/x.txt", "txt", false); err == nil {
		t.Fatal("unwritable path should error")
	}
}

func TestRunCSRFormat(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ba.csr")
	if err := run("ba", 300, 3, 0, 0.1, 1, out, "csr", true); err != nil {
		t.Fatal(err)
	}
	if !wnw.IsCSRFile(out) {
		t.Fatal("output is not a binary CSR file")
	}
	m, err := wnw.OpenCSR(out)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.NumNodes() != 300 || m.NumEdges() == 0 {
		t.Fatalf("csr graph n=%d m=%d", m.NumNodes(), m.NumEdges())
	}
	if err := run("ba", 10, 2, 0, 0.5, 1, "", "csr", false); err == nil {
		t.Fatal("csr to stdout should error")
	}
	if err := run("ba", 10, 2, 0, 0.5, 1, out, "bogus", false); err == nil {
		t.Fatal("unknown format should error")
	}
}
