// Command wegen generates graphs and evaluation datasets as edge-list files.
//
// Usage:
//
//	wegen -model ba -n 1000 -m 7 -seed 42 -out graph.txt
//	wegen -model ba -n 1000000 -m 3 -fast -format csr -out graph.csr
//	wegen -model yelp -scale 0.25 -seed 1 -out yelp.txt
//
// -format csr writes the binary CSR format that wesample -backend disk
// memory-maps in place; -fast draws from the xoshiro256++ generator so
// million-node preferential-attachment graphs generate in seconds (a
// different, equally reproducible stream per seed than the default
// math/rand source).
//
// Models: ba (Barabási–Albert), hk (Holme–Kim), cycle, hypercube (n rounded
// to 2^k), barbell, tree (balanced binary of height h via -m), complete,
// star, gnp, gnm, regular, gplus, yelp, twitter, smallsf.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	wnw "repro"
)

func main() {
	var (
		model  = flag.String("model", "ba", "graph model to generate")
		n      = flag.Int("n", 1000, "number of nodes (or 2^k for hypercube)")
		m      = flag.Int("m", 3, "edges per new node / degree / tree height, model dependent")
		p      = flag.Float64("p", 0.1, "edge or triad probability (gnp, hk)")
		scale  = flag.Float64("scale", 0.25, "dataset scale in (0,1] (gplus, yelp, twitter)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output path (default stdout)")
		format = flag.String("format", "txt", "output format: txt (edge list) | csr (binary, mmap-able)")
		fast   = flag.Bool("fast", false, "draw from the fast xoshiro256++ RNG (different stream per seed)")
	)
	flag.Parse()
	if err := run(*model, *n, *m, *p, *scale, *seed, *out, *format, *fast); err != nil {
		fmt.Fprintln(os.Stderr, "wegen:", err)
		os.Exit(1)
	}
}

func run(model string, n, m int, p, scale float64, seed int64, out, format string, fast bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	var genRng wnw.RNG = rng
	if fast {
		genRng = wnw.NewFastRNG(seed)
	}
	var g *wnw.Graph
	switch model {
	case "ba":
		g = wnw.NewBarabasiAlbert(n, m, genRng)
	case "hk":
		g = wnw.NewHolmeKim(n, m, p, genRng)
	case "cycle":
		g = wnw.NewCycle(n)
	case "hypercube":
		k := 0
		for 1<<(k+1) <= n {
			k++
		}
		g = wnw.NewHypercube(k)
	case "barbell":
		g = wnw.NewBarbell(n)
	case "tree":
		g = wnw.NewBalancedBinaryTree(m)
	case "complete":
		g = wnw.NewComplete(n)
	case "star":
		g = wnw.NewStar(n)
	case "gnp":
		g = wnw.NewErdosRenyiGNP(n, p, rng)
	case "gnm":
		g = wnw.NewErdosRenyiGNM(n, m, rng)
	case "regular":
		g = wnw.NewRandomRegular(n, m, rng)
	case "gplus", "yelp", "twitter", "smallsf":
		var ds *wnw.Dataset
		switch model {
		case "gplus":
			ds, err = wnw.GooglePlusDataset(scale, seed)
		case "yelp":
			ds, err = wnw.YelpDataset(scale, seed)
		case "twitter":
			ds, err = wnw.TwitterDataset(scale, seed)
		case "smallsf":
			ds = wnw.SmallScaleFreeDataset(seed)
		}
		if err != nil {
			return err
		}
		g = ds.Graph
		fmt.Fprintf(os.Stderr, "dataset %s: n=%d m=%d avg-degree=%.2f diameter-bound=%d start=%d\n",
			ds.Name, g.NumNodes(), g.NumEdges(), g.AvgDegree(), ds.DiameterUB, ds.StartNode)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	switch format {
	case "txt":
		if out == "" {
			return wnw.WriteEdgeList(os.Stdout, g)
		}
		if err := wnw.SaveEdgeList(out, g); err != nil {
			return err
		}
	case "csr":
		if out == "" {
			return fmt.Errorf("-format csr needs -out (binary output)")
		}
		if err := wnw.SaveCSR(out, g, nil); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want txt or csr)", format)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d nodes, %d edges\n", out, g.NumNodes(), g.NumEdges())
	return nil
}
