// Command wegen generates graphs and evaluation datasets as edge-list files.
//
// Usage:
//
//	wegen -model ba -n 1000 -m 7 -seed 42 -out graph.txt
//	wegen -model yelp -scale 0.25 -seed 1 -out yelp.txt
//
// Models: ba (Barabási–Albert), hk (Holme–Kim), cycle, hypercube (n rounded
// to 2^k), barbell, tree (balanced binary of height h via -m), complete,
// star, gnp, gnm, regular, gplus, yelp, twitter, smallsf.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	wnw "repro"
)

func main() {
	var (
		model = flag.String("model", "ba", "graph model to generate")
		n     = flag.Int("n", 1000, "number of nodes (or 2^k for hypercube)")
		m     = flag.Int("m", 3, "edges per new node / degree / tree height, model dependent")
		p     = flag.Float64("p", 0.1, "edge or triad probability (gnp, hk)")
		scale = flag.Float64("scale", 0.25, "dataset scale in (0,1] (gplus, yelp, twitter)")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()
	if err := run(*model, *n, *m, *p, *scale, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "wegen:", err)
		os.Exit(1)
	}
}

func run(model string, n, m int, p, scale float64, seed int64, out string) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	rng := rand.New(rand.NewSource(seed))
	var g *wnw.Graph
	switch model {
	case "ba":
		g = wnw.NewBarabasiAlbert(n, m, rng)
	case "hk":
		g = wnw.NewHolmeKim(n, m, p, rng)
	case "cycle":
		g = wnw.NewCycle(n)
	case "hypercube":
		k := 0
		for 1<<(k+1) <= n {
			k++
		}
		g = wnw.NewHypercube(k)
	case "barbell":
		g = wnw.NewBarbell(n)
	case "tree":
		g = wnw.NewBalancedBinaryTree(m)
	case "complete":
		g = wnw.NewComplete(n)
	case "star":
		g = wnw.NewStar(n)
	case "gnp":
		g = wnw.NewErdosRenyiGNP(n, p, rng)
	case "gnm":
		g = wnw.NewErdosRenyiGNM(n, m, rng)
	case "regular":
		g = wnw.NewRandomRegular(n, m, rng)
	case "gplus", "yelp", "twitter", "smallsf":
		var ds *wnw.Dataset
		switch model {
		case "gplus":
			ds, err = wnw.GooglePlusDataset(scale, seed)
		case "yelp":
			ds, err = wnw.YelpDataset(scale, seed)
		case "twitter":
			ds, err = wnw.TwitterDataset(scale, seed)
		case "smallsf":
			ds = wnw.SmallScaleFreeDataset(seed)
		}
		if err != nil {
			return err
		}
		g = ds.Graph
		fmt.Fprintf(os.Stderr, "dataset %s: n=%d m=%d avg-degree=%.2f diameter-bound=%d start=%d\n",
			ds.Name, g.NumNodes(), g.NumEdges(), g.AvgDegree(), ds.DiameterUB, ds.StartNode)
	default:
		return fmt.Errorf("unknown model %q", model)
	}
	if out == "" {
		return wnw.WriteEdgeList(os.Stdout, g)
	}
	if err := wnw.SaveEdgeList(out, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d nodes, %d edges\n", out, g.NumNodes(), g.NumEdges())
	return nil
}
