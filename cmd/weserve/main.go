// Command weserve runs the sampling-as-a-service daemon: it loads a graph
// once — through any access backend (in-memory, memory-mapped disk CSR, or
// simulated remote API) — and serves sampling jobs over HTTP, keeping one
// long-lived shared neighbor cache and the crawl tables hot across all
// requests. The first job pays the warm-up; every later job rides on it.
//
// Usage:
//
//	weserve -in graph.csr -addr :7117
//	weserve -in graph.txt -backend sim -latency 10ms -jitter 2ms
//	weserve -in graph.csr -backend disk -runners 4 -worker-budget 16
//	weserve -in graph.txt -backend sim -faultrate 0.01 -retries 8
//	weserve -in graph.csr -journal /var/lib/weserve/journal -fsync interval
//
// Fleet mode (see DESIGN.md "Cluster architecture"):
//
//	weserve -role coordinator -addr :7117 -workers 3
//	weserve -role worker -in graph.csr -addr :7201 -join http://coord:7117
//
// A coordinator loads no graph: it admits jobs over the same HTTP surface,
// places each on a live worker, relays its NDJSON stream, re-dispatches on
// worker loss, and aggregates fleet meters — fleet-wide query charges stay
// exactly equal to a single process's. A worker is a full single-daemon
// stack that additionally owns a slice of the fleet's neighbor-cache shards
// and answers peer lookups for it at /cluster/v1/resolve.
//
// With -journal set, job lifecycle events are appended to a crash-safe
// journal: on restart, finished jobs are served from their durable records
// (zero new walk steps) and interrupted jobs resume by deterministic re-run,
// producing a client-visible stream bit-identical to an uninterrupted run.
// /readyz reports "recovering" (503) until resumed jobs catch back up.
//
// With -faultrate > 0 (or -outage) the backend is wrapped with a seeded
// deterministic fault injector and the retry/backoff/circuit-breaker
// middleware: transient faults are absorbed below the sampler (sample
// sequences stay bit-identical to a fault-free run), outages open the
// breaker, flip /readyz to 503, and fail in-flight jobs with a typed
// "backend_unavailable" reason while preserving their partial samples.
//
// Endpoints: POST /v1/jobs, GET /v1/jobs[/{id}[/stream]], DELETE
// /v1/jobs/{id}, /healthz (+ /livez, /readyz), /metrics (Prometheus text).
// With -pprof, the net/http/pprof profiling endpoints are additionally
// served under /debug/pprof/ (opt-in; off by default).
// See cmd/weserve/README.md for a curl-able walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	wnw "repro"
	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	var (
		in      = flag.String("in", "", "graph file: edge list or binary CSR (required)")
		backend = flag.String("backend", "mem", "access backend: mem | disk | sim")
		latency = flag.Duration("latency", 50*time.Millisecond, "simulated per-round-trip latency (sim backend)")
		jitter  = flag.Duration("jitter", 0, "simulated latency jitter, uniform in ±jitter (sim backend)")
		fanout  = flag.Int("fanout", 0, "simulated concurrent connections for batch requests (sim backend; 0 = default)")
		addr    = flag.String("addr", ":7117", "HTTP listen address")
		queue   = flag.Int("queue", 64, "bounded job-queue depth (admission control)")
		runners = flag.Int("runners", 2, "jobs run concurrently")
		budget  = flag.Int("worker-budget", 0, "global estimation-worker pool (0 = 4x runners)")
		maxWork = flag.Int("max-workers-per-job", 0, "per-job worker clamp (0 = the whole budget)")
		retain  = flag.Duration("retention", 0, "how long finished job records stay queryable (0 = 15m, negative disables eviction)")
		sweep   = flag.Duration("sweep", 0, "retention sweep interval (0 = retention/10, clamped to [1s,1m])")
		rcache  = flag.Int64("result-cache-bytes", 0, "job result-cache budget: repeat submissions are served from memoized results (0 = 64 MiB, negative disables)")

		faultRate = flag.Float64("faultrate", 0, "per-round-trip backend fault probability in [0,1) (0 disables injection)")
		faultSeed = flag.Int64("fault-seed", 1, "seed of the deterministic fault schedule")
		outage    = flag.String("outage", "", "full-outage window start+dur from startup, e.g. 2s+500ms")
		retries   = flag.Int("retries", 0, "max retries per backend access (0 = policy default)")

		pprofOn = flag.Bool("pprof", false, "expose net/http/pprof profiling endpoints under /debug/pprof/")

		journal    = flag.String("journal", "", "job-journal directory (empty disables durability)")
		fsync      = flag.String("fsync", "interval", "journal fsync policy: always | interval | off")
		fsyncEvery = flag.Duration("fsync-interval", 100*time.Millisecond, "fsync cadence under -fsync interval")
		segBytes   = flag.Int64("segment-bytes", 8<<20, "journal segment size before snapshot+rotation")

		role      = flag.String("role", "single", "process role: single | coordinator | worker")
		join      = flag.String("join", "", "coordinator base URL to join (worker role)")
		advertise = flag.String("advertise", "", "this worker's reachable base URL (worker role; default http://127.0.0.1<addr>)")
		workers   = flag.Int("workers", 0, "expected fleet size (coordinator role; required)")
		name      = flag.String("name", "", "operator label for this worker in fleet stats")
		hbTimeout = flag.Duration("heartbeat-timeout", 2*time.Second, "worker staleness before hand-off (coordinator role)")
	)
	flag.Parse()
	policy, err := serve.ParseFsyncPolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weserve:", err)
		os.Exit(2)
	}
	jcfg := serve.JournalConfig{Dir: *journal, Fsync: policy, FsyncEvery: *fsyncEvery, SegmentBytes: *segBytes}

	if *role == "coordinator" {
		if *workers < 1 {
			fmt.Fprintln(os.Stderr, "weserve: -role coordinator requires -workers >= 1")
			os.Exit(2)
		}
		if err := runCoordinator(*addr, *workers, *hbTimeout, jcfg, *rcache); err != nil {
			fmt.Fprintln(os.Stderr, "weserve:", err)
			os.Exit(1)
		}
		return
	}
	if *role != "single" && *role != "worker" {
		fmt.Fprintf(os.Stderr, "weserve: unknown -role %q (want single, coordinator, or worker)\n", *role)
		os.Exit(2)
	}
	if *role == "worker" && *join == "" {
		fmt.Fprintln(os.Stderr, "weserve: -role worker requires -join")
		os.Exit(2)
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "weserve: -in is required")
		os.Exit(2)
	}
	fleet := fleetOptions{}
	if *role == "worker" {
		adv := *advertise
		if adv == "" {
			a := *addr
			if len(a) > 0 && a[0] == ':' {
				a = "127.0.0.1" + a
			}
			adv = "http://" + a
		}
		fleet = fleetOptions{join: *join, advertise: adv, name: *name}
	}
	faults := wnw.FaultOptions{Rate: *faultRate, Seed: *faultSeed, Outage: *outage, Retries: *retries}
	if err := run(*in, *backend, *latency, *jitter, *fanout, faults, *addr,
		*queue, *runners, *budget, *maxWork, *retain, *sweep, *rcache, jcfg, *pprofOn, fleet); err != nil {
		fmt.Fprintln(os.Stderr, "weserve:", err)
		os.Exit(1)
	}
}

// fleetOptions is the worker-role wiring; the zero value means single mode.
type fleetOptions struct {
	join      string
	advertise string
	name      string
}

// runCoordinator serves the fleet frontend: no graph, no engine — only the
// registry, the job relay, and the aggregated meters.
func runCoordinator(addr string, workers int, hbTimeout time.Duration, jcfg serve.JournalConfig, cacheBytes int64) error {
	var jl *serve.Journal
	var err error
	if jcfg.Dir != "" {
		jl, err = serve.OpenJournal(jcfg)
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		log.Printf("weserve: coordinator journal %q fsync=%s", jcfg.Dir, jcfg.Fsync)
	}
	co, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Workers: workers, HeartbeatTimeout: hbTimeout, Journal: jl,
		CacheBytes: cacheBytes,
	})
	if err != nil {
		return err
	}
	log.Printf("weserve: coordinator addr=%s workers=%d heartbeat-timeout=%v", addr, workers, hbTimeout)
	srv := &http.Server{Addr: addr, Handler: co.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		co.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("weserve: coordinator shutting down")
	co.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("weserve: shutdown: %v", err)
	}
	return nil
}

func run(in, backendName string, latency, jitter time.Duration, fanout int,
	faults wnw.FaultOptions, addr string, queue, runners, budget, maxWork int,
	retention, sweep time.Duration, cacheBytes int64, jcfg serve.JournalConfig,
	pprofOn bool, fleet fleetOptions) error {
	be, cleanup, err := wnw.OpenBackend(in, backendName, latency, jitter, fanout)
	if err != nil {
		return err
	}
	defer cleanup()
	be, fsim, _, err := wnw.WrapFaults(be, faults)
	if err != nil {
		return err
	}
	if fsim != nil {
		log.Printf("weserve: fault injection on: rate=%v seed=%d outage=%q retries=%d",
			faults.Rate, faults.Seed, faults.Outage, faults.Retries)
	}

	net := wnw.NewNetworkOn(be)
	eng := serve.NewEngine(net)
	var jl *serve.Journal
	if jcfg.Dir != "" {
		jl, err = serve.OpenJournal(jcfg)
		if err != nil {
			return fmt.Errorf("open journal: %w", err)
		}
		log.Printf("weserve: journal %q fsync=%s segment-bytes=%d", jcfg.Dir, jcfg.Fsync, jcfg.SegmentBytes)
	}
	mgr := serve.NewManager(eng, serve.Config{
		QueueDepth:       queue,
		Runners:          runners,
		WorkerBudget:     budget,
		MaxWorkersPerJob: maxWork,
		Retention:        retention,
		SweepInterval:    sweep,
		Journal:          jl,
		CacheBytes:       cacheBytes,
		Logf:             log.Printf,
	})
	if jl != nil {
		resumed, rehydrated := mgr.RecoveredCounts()
		if resumed+rehydrated > 0 {
			log.Printf("weserve: journal recovery: %d resumed, %d rehydrated", resumed, rehydrated)
		}
	}
	cfg := mgr.Config()
	log.Printf("weserve: graph %q (%d nodes, id=%s) backend=%s addr=%s runners=%d worker-budget=%d queue=%d retention=%v",
		in, net.NumNodes(), eng.GraphID(), backendName, addr, cfg.Runners, cfg.WorkerBudget, cfg.QueueDepth, cfg.Retention)
	if rcs := mgr.ResultCacheStats(); rcs.Enabled {
		log.Printf("weserve: result cache on: budget=%d bytes", rcs.MaxBytes)
	} else {
		log.Printf("weserve: result cache disabled")
	}

	handler := serve.Handler(mgr)
	var wk *cluster.Worker
	if fleet.join != "" {
		wk, err = cluster.NewWorker(mgr, cluster.WorkerConfig{
			Coordinator: fleet.join,
			Advertise:   fleet.advertise,
			Name:        fleet.name,
		})
		if err != nil {
			mgr.Close()
			return err
		}
		handler = wk.Handler()
		log.Printf("weserve: worker join=%s advertise=%s", fleet.join, fleet.advertise)
	}
	if pprofOn {
		// Opt-in only: profiling endpoints expose heap contents and must
		// never ride along on a production listener by default. Mounted on
		// an explicit mux (not http.DefaultServeMux) so nothing else an
		// imported package registers leaks onto the service address.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Printf("weserve: pprof endpoints enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if wk != nil {
		// Register once the listener is (about to be) up; Start retries while
		// the coordinator is still booting.
		go func() {
			if err := wk.Start(); err != nil {
				log.Printf("weserve: %v", err)
				return
			}
			log.Printf("weserve: joined fleet as worker %d", wk.Index())
		}()
	}
	select {
	case err := <-errc:
		if wk != nil {
			wk.Close()
		}
		mgr.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("weserve: shutting down")
	// Stop heartbeating first (the coordinator stops placing new jobs here),
	// then cancel jobs: that terminates their NDJSON streams, so Shutdown's
	// wait for in-flight handlers can actually finish.
	if wk != nil {
		wk.Close()
	}
	mgr.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("weserve: shutdown: %v", err)
	}
	return nil
}
