// Command weload is a load generator for the weserve daemon. By default it
// runs closed-loop: C concurrent loops each submit a sampling job, follow
// its NDJSON stream counting samples as they arrive, and move on to the next
// job — so offered load tracks service capacity instead of piling up. With
// -rate R it runs open-loop instead: jobs are submitted at a fixed R jobs/s
// regardless of completions, which is how you measure latency under a load
// the service does not control (the classic coordinated-omission-free
// setup). It reports throughput (jobs/s, samples/s), job- and per-sample
// latency percentiles, and — when the daemon fronts a fault-injected
// backend — the backend fault/retry/failure counters scraped from /metrics
// across the run, as a JSON record, the raw material of BENCH_serve.json.
//
// Submissions turned away with a load-shedding 503 (queue full or draining)
// are retried up to 5 times, honoring the daemon's Retry-After hint with a
// capped backoff; jobs still shed afterwards are counted in "shed" (apart
// from "errors") and every 503-triggered re-submission in "submit_retries".
// Open-loop submission cadence is unaffected — retries ride inside each
// job's goroutine, so the extra wait shows up as latency, never as reduced
// offered load (coordinated omission stays out of the numbers).
//
// Usage:
//
//	weload -addr 127.0.0.1:7117 -jobs 16 -concurrency 4 -count 20 -workers 2
//	weload -addr 127.0.0.1:7117 -wait 10s -label warm -out BENCH_run.json
//	weload -addr 127.0.0.1:7117 -rate 8 -jobs 64 -label open-loop
//	weload -addr 127.0.0.1:7117 -dedup -zipf 1.2 -distinct 16 -jobs 200
//
// -wait polls /healthz until the daemon answers (for scripts that boot
// weserve and immediately drive it). Seeds default to base+jobIndex so runs
// are reproducible; pass -same-seed to make every job identical (the warm-
// replay workload that isolates cache effects).
//
// -dedup switches to a zipfian repeat-submission mix: each job's seed is
// drawn (deterministically, from the base seed) as base+rank with rank
// zipf(-zipf)-distributed over -distinct values, modeling the few-hot-many-
// cold query traffic a resident service actually sees. The record gains a
// "dedup" section: result-cache hit rate (from the terminal lines' cached
// marker) against the (jobs-distinct)/jobs floor, charges saved (the
// daemon's walknotwait_queries_saved_total delta), and separate latency
// digests for cached vs live jobs.
//
// The address may be a cluster coordinator (weserve -role coordinator) —
// the API is identical. Coordinator job statuses carry a "worker" placement
// field; weload then adds a per-worker breakdown (jobs placed, samples,
// samples/s, plus the coordinator's hand-off count) to the JSON record
// under "cluster".
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7117", "weserve address (host:port or URL)")
		jobs     = flag.Int("jobs", 16, "total jobs to run")
		conc     = flag.Int("concurrency", 4, "closed-loop client loops")
		count    = flag.Int("count", 20, "samples per job")
		workers  = flag.Int("workers", 2, "estimation workers per job")
		design   = flag.String("design", "srw", "input design: srw | mhrw")
		jobType  = flag.String("type", "sample", "job type: sample | estimate-mean | walk-path")
		seed     = flag.Int64("seed", 1, "base seed (job i uses seed+i)")
		sameSeed = flag.Bool("same-seed", false, "give every job the identical seed (warm-replay workload)")
		wait     = flag.Duration("wait", 0, "poll /healthz up to this long before starting")
		label    = flag.String("label", "", "label recorded in the output JSON")
		out      = flag.String("out", "", "output path for the JSON record (default stdout)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "per-job client timeout")
		rate     = flag.Float64("rate", 0, "open-loop submission rate in jobs/s (0 = closed-loop)")
		dedup    = flag.Bool("dedup", false, "zipfian repeat-submission workload: draw each job's spec from -distinct seeds with zipf(-zipf) popularity and report result-cache hit rate + charges saved")
		zipfS    = flag.Float64("zipf", 1.2, "zipf skew parameter s > 1 (-dedup)")
		distinct = flag.Int("distinct", 16, "distinct specs in the zipfian mix (-dedup)")
	)
	flag.Parse()
	if err := run(*addr, *jobs, *conc, *count, *workers, *design, *jobType,
		*seed, *sameSeed, *wait, *label, *out, *timeout, *rate,
		dedupOptions{on: *dedup, s: *zipfS, distinct: *distinct}); err != nil {
		fmt.Fprintln(os.Stderr, "weload:", err)
		os.Exit(1)
	}
}

// record is the JSON document weload emits.
type record struct {
	Label string `json:"label,omitempty"`
	Addr  string `json:"addr"`
	Type  string `json:"type"`
	// Mode is "closed" (loops paced by completions) or "open" (fixed
	// submission rate).
	Mode          string  `json:"mode"`
	OfferedRate   float64 `json:"offered_rate_jobs_per_sec,omitempty"`
	Design        string  `json:"design"`
	Jobs          int     `json:"jobs"`
	Concurrency   int     `json:"concurrency,omitempty"`
	CountPerJob   int     `json:"count_per_job"`
	WorkersPerJob int     `json:"workers_per_job"`
	Errors        int     `json:"errors"`
	// Shed counts jobs the daemon turned away with a load-shedding 503
	// (queue full or draining) that were still shed after exhausting the
	// submit retries. SubmitRetries counts every 503-triggered
	// re-submission, including those that eventually got through.
	Shed          int   `json:"shed"`
	SubmitRetries int64 `json:"submit_retries"`
	// FailureReasons counts failed jobs by the daemon's typed reason
	// ("backend_unavailable", "deadline_exceeded", or the terminal state
	// when no reason was attached).
	FailureReasons map[string]int64 `json:"failure_reasons,omitempty"`
	Samples        int64            `json:"samples"`
	WallS          float64          `json:"wall_s"`
	SamplesPerSec  float64          `json:"samples_per_sec"`
	JobsPerSec     float64          `json:"jobs_per_sec"`
	LatencyMS      struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P90  float64 `json:"p90"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
	} `json:"latency_ms"`
	// SampleLatencyMS summarizes per-sample stream timestamps: for every
	// sample line, the time from its job's submission to the line's arrival
	// on the NDJSON stream. Where LatencyMS describes whole jobs, this
	// describes the latency an end user streaming results actually
	// experiences per sample (first samples arrive long before the job
	// finishes).
	SampleLatencyMS struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
	} `json:"sample_latency_ms"`
	FleetQueries int64 `json:"fleet_queries_after"`
	// Backend carries the daemon-side fault/retry counters (deltas across
	// the run, scraped from /metrics), present when the daemon fronts a
	// fault-injected or resilience-wrapped backend.
	Backend *backendCounters `json:"backend,omitempty"`
	// Cluster breaks the run down by fleet worker, present when the address
	// is a cluster coordinator (its job statuses carry a "worker" placement
	// field; a single daemon's do not).
	Cluster *clusterBreakdown `json:"cluster,omitempty"`
	// Dedup summarizes a -dedup run: the zipfian mix, the result-cache hit
	// rate the client observed, the charges the cache saved, and how cached
	// admissions compare to live runs latency-wise.
	Dedup *dedupReport `json:"dedup,omitempty"`
}

// dedupOptions configures the -dedup zipfian repeat workload.
type dedupOptions struct {
	on       bool
	s        float64
	distinct int
}

// latSummary is a compact latency digest (milliseconds).
type latSummary struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func summarize(xs []float64) latSummary {
	sort.Float64s(xs)
	out := latSummary{N: len(xs)}
	if len(xs) == 0 {
		return out
	}
	sum := 0.0
	for _, v := range xs {
		sum += v
	}
	out.Mean = sum / float64(len(xs))
	out.P50 = percentile(xs, 0.50)
	out.P99 = percentile(xs, 0.99)
	out.Max = xs[len(xs)-1]
	return out
}

// dedupReport is the -dedup section of the record. Hits and misses are
// client-observed (the terminal line's cached marker), so they count exactly
// this run's jobs; QueriesSaved is the daemon's meter delta across the run.
type dedupReport struct {
	DistinctSpecs int     `json:"distinct_specs"`
	ZipfS         float64 `json:"zipf_s"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	// PredictedFloor is the hit rate a deterministic cache must reach on
	// this mix once warm: at most one miss per distinct spec, so
	// (jobs - distinct)/jobs. The zipf draw usually skips tail specs,
	// putting the observed rate above the floor.
	PredictedFloor  float64    `json:"predicted_hit_rate_floor"`
	QueriesSaved    int64      `json:"queries_saved"`
	CachedLatencyMS latSummary `json:"cached_latency_ms"`
	LiveLatencyMS   latSummary `json:"live_latency_ms"`
}

// clusterBreakdown is the per-worker view of a run driven through a
// coordinator: where jobs landed and how throughput split across the fleet.
type clusterBreakdown struct {
	// Workers maps fleet index (as a string, for JSON) to that worker's
	// share of the run.
	Workers map[string]workerLoad `json:"workers"`
	// Handoffs is the coordinator's re-dispatch count after the run — jobs
	// that survived losing their worker (scraped from /v1/cluster).
	Handoffs int64 `json:"handoffs"`
}

// workerLoad is one worker's slice of the run.
type workerLoad struct {
	Jobs          int     `json:"jobs"`
	Samples       int64   `json:"samples"`
	SamplesPerSec float64 `json:"samples_per_sec"`
}

// backendCounters are /metrics deltas across the run.
type backendCounters struct {
	Faults   int64 `json:"faults"`
	Retries  int64 `json:"retries"`
	Absorbed int64 `json:"retries_absorbed"`
	Failures int64 `json:"failures"`
}

func run(addr string, jobs, conc, count, workers int, design, jobType string,
	seed int64, sameSeed bool, wait time.Duration, label, out string,
	timeout time.Duration, rate float64, dd dedupOptions) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: timeout}

	if wait > 0 {
		if err := waitHealthy(client, base, wait); err != nil {
			return err
		}
	}
	if jobs < 1 || conc < 1 {
		return fmt.Errorf("need jobs >= 1 and concurrency >= 1")
	}
	if rate < 0 {
		return fmt.Errorf("need rate >= 0")
	}
	if conc > jobs {
		conc = jobs
	}
	// -dedup: pre-draw the whole zipfian seed assignment so the workload is
	// identical regardless of goroutine interleaving — job i always runs
	// seed+rank(i), rank drawn once from a seeded zipf over [0, distinct).
	var assign []int64
	if dd.on {
		if dd.distinct < 1 || dd.distinct > jobs {
			return fmt.Errorf("need 1 <= distinct <= jobs, got %d", dd.distinct)
		}
		if dd.s <= 1 {
			return fmt.Errorf("need zipf s > 1, got %g", dd.s)
		}
		z := rand.NewZipf(rand.New(rand.NewSource(seed)), dd.s, 1, uint64(dd.distinct-1))
		assign = make([]int64, jobs)
		for i := range assign {
			assign[i] = seed + int64(z.Uint64())
		}
	}

	var (
		next       atomic.Int64
		samples    atomic.Int64
		errs       atomic.Int64
		shed       atomic.Int64
		subRetries atomic.Int64
		fleetQ     atomic.Int64
		hits       atomic.Int64
		misses     atomic.Int64
		mu         sync.Mutex
		latencies  []float64
		sampleLats []float64
		cachedLats []float64
		liveLats   []float64
		reasons    = make(map[string]int64)
		placements = make(map[int]*workerLoad)
		wg         sync.WaitGroup
	)
	doJob := func(i int) {
		s := seed + int64(i)
		if sameSeed {
			s = seed
		}
		if assign != nil {
			s = assign[i]
		}
		t0 := time.Now()
		res := runJob(client, base, jobType, design, count, workers, s)
		samples.Add(res.samples)
		subRetries.Add(res.submitRetries)
		if res.worker != nil {
			mu.Lock()
			wl := placements[*res.worker]
			if wl == nil {
				wl = &workerLoad{}
				placements[*res.worker] = wl
			}
			wl.Jobs++
			wl.Samples += res.samples
			mu.Unlock()
		}
		if res.shed {
			// Shed jobs are the daemon saying "not now", not a failure of
			// either side — counted apart from errors and kept out of the
			// latency population (they never ran).
			fmt.Fprintf(os.Stderr, "weload: job %d: shed: %v\n", i, res.err)
			shed.Add(1)
			return
		}
		if res.err != nil {
			fmt.Fprintf(os.Stderr, "weload: job %d: %v\n", i, res.err)
			errs.Add(1)
			if res.reason != "" {
				mu.Lock()
				reasons[res.reason]++
				mu.Unlock()
			}
			return
		}
		if res.fleetQueries > 0 {
			// Best-effort meter read: never let a failed status
			// fetch zero out a valid reading from an earlier job.
			fleetQ.Store(res.fleetQueries)
		}
		d := time.Since(t0)
		lat := float64(d) / float64(time.Millisecond)
		if res.cached {
			hits.Add(1)
		} else {
			misses.Add(1)
		}
		mu.Lock()
		latencies = append(latencies, lat)
		sampleLats = append(sampleLats, res.stamps...)
		if res.cached {
			cachedLats = append(cachedLats, lat)
		} else {
			liveLats = append(liveLats, lat)
		}
		mu.Unlock()
	}

	before := scrapeBackend(client, base)
	savedBefore := scrapeQueriesSaved(client, base)
	began := time.Now()
	if rate > 0 {
		// Open-loop: one goroutine per job, launched on a fixed cadence
		// regardless of completions. Latency under load is measured against
		// the intended submission schedule, so a slow service shows up as
		// latency, not as reduced offered load.
		interval := time.Duration(float64(time.Second) / rate)
		tick := time.NewTicker(interval)
		for i := 0; i < jobs; i++ {
			if i > 0 {
				<-tick.C
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				doJob(i)
			}(i)
		}
		tick.Stop()
	} else {
		for w := 0; w < conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= jobs {
						return
					}
					doJob(i)
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(began)
	after := scrapeBackend(client, base)

	mode := "closed"
	if rate > 0 {
		mode = "open"
		conc = 0
	}
	rec := record{
		Label: label, Addr: base, Type: jobType, Mode: mode, OfferedRate: rate,
		Design: design,
		Jobs:   jobs, Concurrency: conc, CountPerJob: count, WorkersPerJob: workers,
		Errors:        int(errs.Load()),
		Shed:          int(shed.Load()),
		SubmitRetries: subRetries.Load(),
		Samples:       samples.Load(),
		WallS:         wall.Seconds(),
		FleetQueries:  fleetQ.Load(),
	}
	if len(reasons) > 0 {
		rec.FailureReasons = reasons
	}
	if before != nil && after != nil {
		rec.Backend = &backendCounters{
			Faults:   after.Faults - before.Faults,
			Retries:  after.Retries - before.Retries,
			Absorbed: after.Absorbed - before.Absorbed,
			Failures: after.Failures - before.Failures,
		}
	}
	if dd.on {
		h, m := hits.Load(), misses.Load()
		dr := &dedupReport{
			DistinctSpecs:   dd.distinct,
			ZipfS:           dd.s,
			Hits:            h,
			Misses:          m,
			PredictedFloor:  float64(jobs-dd.distinct) / float64(jobs),
			QueriesSaved:    scrapeQueriesSaved(client, base) - savedBefore,
			CachedLatencyMS: summarize(cachedLats),
			LiveLatencyMS:   summarize(liveLats),
		}
		if h+m > 0 {
			dr.HitRate = float64(h) / float64(h+m)
		}
		rec.Dedup = dr
	}
	if len(placements) > 0 {
		cb := &clusterBreakdown{Workers: make(map[string]workerLoad, len(placements))}
		for idx, wl := range placements {
			if wall > 0 {
				wl.SamplesPerSec = float64(wl.Samples) / wall.Seconds()
			}
			cb.Workers[strconv.Itoa(idx)] = *wl
		}
		cb.Handoffs = scrapeHandoffs(client, base)
		rec.Cluster = cb
	}
	if wall > 0 {
		rec.SamplesPerSec = float64(rec.Samples) / wall.Seconds()
		rec.JobsPerSec = float64(jobs-rec.Errors-rec.Shed) / wall.Seconds()
	}
	sort.Float64s(latencies)
	if len(latencies) > 0 {
		sum := 0.0
		for _, v := range latencies {
			sum += v
		}
		rec.LatencyMS.Mean = sum / float64(len(latencies))
		rec.LatencyMS.P50 = percentile(latencies, 0.50)
		rec.LatencyMS.P90 = percentile(latencies, 0.90)
		rec.LatencyMS.P99 = percentile(latencies, 0.99)
		rec.LatencyMS.Max = latencies[len(latencies)-1]
	}
	sort.Float64s(sampleLats)
	if len(sampleLats) > 0 {
		sum := 0.0
		for _, v := range sampleLats {
			sum += v
		}
		rec.SampleLatencyMS.Mean = sum / float64(len(sampleLats))
		rec.SampleLatencyMS.P50 = percentile(sampleLats, 0.50)
		rec.SampleLatencyMS.P95 = percentile(sampleLats, 0.95)
		rec.SampleLatencyMS.P99 = percentile(sampleLats, 0.99)
		rec.SampleLatencyMS.Max = sampleLats[len(sampleLats)-1]
	}

	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

// jobResult is everything one job attempt yields: the sample count, the
// fleet-wide query meter from the terminal status, per-sample stream
// timestamps (ms from submission to each line's arrival), how many
// load-shedding 503s were retried through, whether the job was ultimately
// shed, and — for failed jobs — the daemon's typed failure reason.
type jobResult struct {
	samples       int64
	fleetQueries  int64
	stamps        []float64
	submitRetries int64
	shed          bool
	// cached marks a job answered from the daemon's result cache (the
	// terminal stream line carries "cached": true).
	cached bool
	reason string
	err    error
	// worker is the fleet placement index from a coordinator's job status
	// (nil against a single daemon, whose statuses have no "worker" field).
	worker *int
}

// Load-shedding 503s are retried with the daemon's own backoff hint
// (retry_after_ms in the body, else the Retry-After header), falling back to
// 100ms doubling, everything capped — an overloaded service gets breathing
// room without the client waiting forever.
const (
	maxSubmitRetries = 5
	maxRetryBackoff  = 2 * time.Second
)

// submitJob POSTs the spec, retrying load-shedding 503s up to
// maxSubmitRetries times. Returns the job id, the fleet placement (nil
// against a single daemon), the retry count, and whether the job was shed
// after exhausting the retries.
func submitJob(client *http.Client, base string, body []byte) (string, *int, int64, bool, error) {
	var retries int64
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return "", nil, retries, false, err
		}
		sub, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			var st struct {
				ID     string `json:"id"`
				Worker *int   `json:"worker"`
			}
			if err := json.Unmarshal(sub, &st); err != nil {
				return "", nil, retries, false, fmt.Errorf("submit response: %v", err)
			}
			return st.ID, st.Worker, retries, false, nil
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			return "", nil, retries, false, fmt.Errorf("submit: %d %s", resp.StatusCode, bytes.TrimSpace(sub))
		}
		if attempt >= maxSubmitRetries {
			return "", nil, retries, true, fmt.Errorf("submit: %d %s (after %d retries)", resp.StatusCode, bytes.TrimSpace(sub), retries)
		}
		retries++
		time.Sleep(retryDelay(resp, sub, attempt))
	}
}

// retryDelay picks the pause before re-submitting after a 503: the daemon's
// hint if it sent one, else exponential from 100ms, capped at
// maxRetryBackoff.
func retryDelay(resp *http.Response, body []byte, attempt int) time.Duration {
	d := 100 * time.Millisecond << attempt
	var hint struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	if json.Unmarshal(body, &hint) == nil && hint.RetryAfterMS > 0 {
		d = time.Duration(hint.RetryAfterMS) * time.Millisecond
	} else if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// runJob submits one job (retrying load-shedding 503s) and follows its
// NDJSON stream to completion.
func runJob(client *http.Client, base, jobType, design string, count, workers int, seed int64) jobResult {
	spec := map[string]any{
		"type":    jobType,
		"design":  design,
		"count":   count,
		"seed":    seed,
		"workers": workers,
	}
	body, _ := json.Marshal(spec)
	submitted := time.Now()
	id, worker, retries, wasShed, err := submitJob(client, base, body)
	res := jobResult{submitRetries: retries, shed: wasShed, worker: worker}
	if err != nil {
		res.err = err
		return res
	}

	resp, err := client.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		res.err = err
		return res
	}
	defer resp.Body.Close()
	res.stamps = make([]float64, 0, count)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var terminal struct {
		Done          bool   `json:"done"`
		State         string `json:"state"`
		Error         string `json:"error"`
		FailureReason string `json:"failure_reason"`
		Cached        bool   `json:"cached"`
	}
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			if err := json.Unmarshal(line, &terminal); err == nil && terminal.Done {
				continue
			}
		}
		var s struct {
			Node *int  `json:"node"`
			Cost int64 `json:"cost"`
		}
		if err := json.Unmarshal(line, &s); err != nil || s.Node == nil {
			continue
		}
		res.samples++
		res.stamps = append(res.stamps, float64(time.Since(submitted))/float64(time.Millisecond))
	}
	if err := sc.Err(); err != nil {
		res.err = err
		return res
	}
	res.cached = terminal.Cached
	if terminal.State != "done" {
		res.reason = terminal.FailureReason
		if res.reason == "" {
			res.reason = terminal.State
		}
		res.err = fmt.Errorf("job %s ended %q (%s): %s", id, terminal.State, res.reason, terminal.Error)
		return res
	}

	// One status read for the fleet meter after the job.
	resp, err = client.Get(base + "/v1/jobs/" + id)
	if err != nil {
		return res // stream already succeeded; meter is best-effort
	}
	defer resp.Body.Close()
	var full struct {
		Worker *int `json:"worker"`
		Result *struct {
			FleetQueries int64 `json:"fleet_queries"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&full); err == nil {
		if full.Result != nil {
			res.fleetQueries = full.Result.FleetQueries
		}
		if full.Worker != nil {
			// Final placement wins: a hand-off may have moved the job since
			// submission.
			res.worker = full.Worker
		}
	}
	return res
}

// scrapeHandoffs reads the coordinator's re-dispatch count from
// /v1/cluster. Best-effort zero when the endpoint is absent.
func scrapeHandoffs(client *http.Client, base string) int64 {
	resp, err := client.Get(base + "/v1/cluster?refresh=0")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0
	}
	var sum struct {
		Handoffs int64 `json:"handoffs"`
	}
	if json.NewDecoder(resp.Body).Decode(&sum) != nil {
		return 0
	}
	return sum.Handoffs
}

// scrapeQueriesSaved reads the daemon's result-cache charges-saved counter
// from /metrics. Best-effort zero when unreachable or absent, so the -dedup
// delta degrades to 0 instead of failing the run.
func scrapeQueriesSaved(client *http.Client, base string) int64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != "walknotwait_queries_saved_total" {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%d", &v); err == nil {
			return v
		}
	}
	return 0
}

// scrapeBackend reads the daemon's /metrics and extracts the backend
// fault/retry counters; nil when the daemon has no fault-injected backend
// (or /metrics is unreachable). Best-effort: weload must work against
// daemons without the resilience layer.
func scrapeBackend(client *http.Client, base string) *backendCounters {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var bc backendCounters
	found := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%d", &v); err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(name, "walknotwait_backend_faults_total"):
			bc.Faults += v // summed across kind labels
			found = true
		case name == "walknotwait_backend_retries_total":
			bc.Retries = v
			found = true
		case name == "walknotwait_backend_retries_absorbed_total":
			bc.Absorbed = v
			found = true
		case name == "walknotwait_backend_failures_total":
			bc.Failures = v
			found = true
		}
	}
	if !found {
		return nil
	}
	return &bc
}

func waitHealthy(client *http.Client, base string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon at %s not healthy after %v", base, wait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// percentile returns the p-th percentile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
