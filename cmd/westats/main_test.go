package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	wnw "repro"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := wnw.NewBarabasiAlbert(150, 3, rng)
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := wnw.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSmallGraph(t *testing.T) {
	if err := run(writeGraph(t), false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunExactFlag(t *testing.T) {
	if err := run(writeGraph(t), true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunLargeGraphSampledPath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := wnw.NewBarabasiAlbert(2500, 3, rng)
	path := filepath.Join(t.TempDir(), "big.txt")
	if err := wnw.SaveEdgeList(path, g); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/does/not/exist.txt", false, 1); err == nil {
		t.Fatal("missing file should error")
	}
}
