// Command westats prints topology statistics for an edge-list graph file:
// size, degrees, connectivity, diameter (exact for small graphs, double-sweep
// estimate otherwise), clustering, mean shortest path, and the spectral gaps
// of the SRW and MHRW transition designs.
//
// Usage:
//
//	westats -in graph.txt [-exact] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	wnw "repro"
)

func main() {
	var (
		in    = flag.String("in", "", "edge-list file (required)")
		exact = flag.Bool("exact", false, "force exact diameter/shortest-path (O(n·m))")
		seed  = flag.Int64("seed", 1, "random seed for estimators")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "westats: -in is required")
		os.Exit(2)
	}
	if err := run(*in, *exact, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "westats:", err)
		os.Exit(1)
	}
}

func run(in string, exact bool, seed int64) error {
	g, err := wnw.LoadEdgeList(in)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("nodes          %d\n", g.NumNodes())
	fmt.Printf("edges          %d\n", g.NumEdges())
	fmt.Printf("avg-degree     %.4f\n", g.AvgDegree())
	fmt.Printf("min-degree     %d\n", g.MinDegree())
	fmt.Printf("max-degree     %d\n", g.MaxDegree())
	fmt.Printf("connected      %v\n", g.IsConnected())

	small := exact || g.NumNodes() <= 2000
	if small {
		fmt.Printf("diameter       %d (exact)\n", g.Diameter())
		fmt.Printf("avg-path       %.4f (exact)\n", g.AvgShortestPath())
		fmt.Printf("avg-clustering %.4f (exact)\n", g.AvgClustering())
	} else {
		fmt.Printf("diameter       >=%d (double-sweep estimate)\n", g.EstimateDiameter(4, rng))
		fmt.Printf("avg-path       %.4f (sampled)\n", g.AvgShortestPathSampled(64, rng))
		fmt.Printf("avg-clustering %.4f (sampled)\n", g.AvgClusteringSampled(5000, rng))
	}

	if g.NumNodes() >= 2 && g.NumEdges() > 0 && g.IsConnected() {
		piSRW, err := wnw.SRWStationary(g)
		if err != nil {
			return err
		}
		srwGap, err := wnw.SpectralGap(wnw.Lazify(wnw.NewSRWMatrix(g), 0.01), piSRW, 5000, rng)
		if err == nil {
			// Undo the lazy shift: gap_lazy = (1-α)·gap.
			fmt.Printf("srw-gap        %.6f\n", srwGap/0.99)
		}
		mhGap, err := wnw.SpectralGap(wnw.Lazify(wnw.NewMHRWMatrix(g), 0.01),
			wnw.UniformStationary(g.NumNodes()), 5000, rng)
		if err == nil {
			fmt.Printf("mhrw-gap       %.6f\n", mhGap/0.99)
		}
	}
	return nil
}
