package main

import (
	"testing"

	wnw "repro"
)

func tinyOpts() wnw.ExperimentOptions {
	return wnw.ExperimentOptions{
		Seed:        3,
		Scale:       0.02,
		Trials:      2,
		Samples:     10,
		BiasSamples: 1500,
	}
}

func TestRunSingleExperiments(t *testing.T) {
	for _, name := range []string{"fig1", "fig2", "fig3", "table1", "longrun"} {
		if err := run(name, tinyOpts()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunMultiExperiments(t *testing.T) {
	for _, name := range []string{"fig6", "fig11", "fig12"} {
		if err := run(name, tinyOpts()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("fig99", tinyOpts()); err == nil {
		t.Fatal("unknown experiment should error")
	}
}
