// Command weexp reproduces the paper's tables and figures. Each experiment
// prints the same data series the paper plots, as plain-text tables suitable
// for diffing or re-plotting.
//
// Usage:
//
//	weexp [flags] fig1|fig2|fig3|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table1|longrun|all
//
// Flags tune the budgets; defaults are interactive-friendly, while
// -trials 100 -scale 1 approaches the paper's full setting.
package main

import (
	"flag"
	"fmt"
	"os"

	wnw "repro"
)

func main() {
	var (
		seed    = flag.Int64("seed", 1, "random seed")
		scale   = flag.Float64("scale", 0.25, "dataset surrogate scale in (0,1]")
		trials  = flag.Int("trials", 15, "independent trials averaged per point (paper: 100)")
		samples = flag.Int("samples", 100, "samples per trial")
		geweke  = flag.Float64("geweke", 0.1, "Geweke threshold for baselines")
		bias    = flag.Int("bias-samples", 200000, "samples for fig12/table1")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: weexp [flags] <experiment>")
		fmt.Fprintln(os.Stderr, "experiments: fig1 fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 table1 longrun sensitivity harvest all")
		os.Exit(2)
	}
	o := wnw.ExperimentOptions{
		Seed:            *seed,
		Scale:           *scale,
		Trials:          *trials,
		Samples:         *samples,
		GewekeThreshold: *geweke,
		BiasSamples:     *bias,
	}
	if err := run(flag.Arg(0), o); err != nil {
		fmt.Fprintln(os.Stderr, "weexp:", err)
		os.Exit(1)
	}
}

func run(name string, o wnw.ExperimentOptions) error {
	single := map[string]func(wnw.ExperimentOptions) (wnw.ExperimentResult, error){
		"fig1":        wnw.Fig1,
		"fig2":        wnw.Fig2,
		"fig3":        wnw.Fig3,
		"fig5":        wnw.Fig5,
		"table1":      wnw.Table1,
		"longrun":     wnw.OneLongRunStudy,
		"sensitivity": wnw.GewekeSensitivity,
		"harvest":     wnw.HarvestStudy,
		"burnin":      wnw.BurnInProfile,
	}
	multi := map[string]func(wnw.ExperimentOptions) ([]wnw.ExperimentResult, error){
		"fig6":  wnw.Fig6,
		"fig7":  wnw.Fig7,
		"fig8":  wnw.Fig8,
		"fig9":  wnw.Fig9,
		"fig10": wnw.Fig10,
		"fig11": wnw.Fig11,
		"fig12": wnw.Fig12,
		"all":   wnw.AllExperiments,
	}
	if f, ok := single[name]; ok {
		r, err := f(o)
		if err != nil {
			return err
		}
		return r.Render(os.Stdout)
	}
	if f, ok := multi[name]; ok {
		rs, err := f(o)
		if err != nil {
			return err
		}
		for _, r := range rs {
			if err := r.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", name)
}
