package walknotwait

import (
	"math/rand"
	"time"

	"repro/internal/osn"
)

// Network is the hidden side of a simulated online social network: the full
// topology plus node attributes, accessible to samplers only through a
// metered Client.
type Network = osn.Network

// Client is a metered third-party view of a Network: neighbor queries are
// cached and counted, attributes are charged like profile fetches, and the
// §6.3.1 access restrictions are applied.
type Client = osn.Client

// NetworkOption configures a Network.
type NetworkOption = osn.Option

// CostMode selects how a Client charges queries.
type CostMode = osn.CostMode

const (
	// CostUniqueNodes charges one query per distinct node accessed (the
	// paper's cost measure; repeat lookups hit the crawler's cache).
	CostUniqueNodes = osn.CostUniqueNodes
	// CostPerCall charges every interface call.
	CostPerCall = osn.CostPerCall
)

// AttrDegree is the pseudo-attribute name for node degree.
const AttrDegree = osn.AttrDegree

// NewNetwork wraps a graph as a simulated online social network.
func NewNetwork(g *Graph, opts ...NetworkOption) *Network { return osn.NewNetwork(g, opts...) }

// NewClient creates a metered client over a network.
func NewClient(net *Network, mode CostMode, rng *rand.Rand) *Client {
	return osn.NewClient(net, mode, rng)
}

// SharedCache is a concurrency-safe neighbor cache plus global unique-node
// accounting that several Clients (one per worker goroutine) attach to:
// across all attached clients each distinct node is fetched — and, under
// CostUniqueNodes, charged — exactly once.
type SharedCache = osn.SharedCache

// NewSharedCache returns an empty shared neighbor cache.
func NewSharedCache() *SharedCache { return osn.NewSharedCache() }

// NewClientShared creates a metered client attached to a shared neighbor
// cache. Clients of the same cache may be used from different goroutines;
// each keeps its own cost meter while the cache meters the fleet-wide cost.
func NewClientShared(net *Network, mode CostMode, rng *rand.Rand, sc *SharedCache) *Client {
	return osn.NewClientShared(net, mode, rng, sc)
}

// WithAttribute attaches a numeric per-node attribute table.
func WithAttribute(name string, values []float64) NetworkOption {
	return osn.WithAttribute(name, values)
}

// WithAttrFunc attaches a lazily-computed, memoized per-node attribute.
func WithAttrFunc(name string, fn func(node int) float64) NetworkOption {
	return osn.WithAttrFunc(name, fn)
}

// WithRestriction installs a neighbor-list access restriction (§6.3.1).
func WithRestriction(r Restriction) NetworkOption { return osn.WithRestriction(r) }

// WithRateLimit simulates a query rate limit (e.g. 15 requests/15 min).
func WithRateLimit(perWindow int, window time.Duration) NetworkOption {
	return osn.WithRateLimit(perWindow, window)
}

// Restriction models the neighbor-list access restrictions of §6.3.1.
type Restriction = osn.Restriction

// RandomK is restriction type (1): a fresh random k-subset per invocation.
type RandomK = osn.RandomK

// FixedK is restriction type (2): a fixed random k-subset per node.
type FixedK = osn.FixedK

// TruncateL is restriction type (3): at most the first l neighbors.
type TruncateL = osn.TruncateL

// EstimateDegreeMarkRecapture estimates a node's true degree under a
// RandomK restriction with the Petersen mark-recapture estimator.
func EstimateDegreeMarkRecapture(c *Client, v, rounds int) (float64, error) {
	return osn.EstimateDegreeMarkRecapture(c, v, rounds)
}
