package walknotwait

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/osn"
)

// Network is the hidden side of a simulated online social network: the full
// topology plus node attributes, accessible to samplers only through a
// metered Client.
type Network = osn.Network

// Client is a metered third-party view of a Network: neighbor queries are
// cached and counted, attributes are charged like profile fetches, and the
// §6.3.1 access restrictions are applied.
type Client = osn.Client

// NetworkOption configures a Network.
type NetworkOption = osn.Option

// CostMode selects how a Client charges queries.
type CostMode = osn.CostMode

const (
	// CostUniqueNodes charges one query per distinct node accessed (the
	// paper's cost measure; repeat lookups hit the crawler's cache).
	CostUniqueNodes = osn.CostUniqueNodes
	// CostPerCall charges every interface call.
	CostPerCall = osn.CostPerCall
)

// AttrDegree is the pseudo-attribute name for node degree.
const AttrDegree = osn.AttrDegree

// NewNetwork wraps a graph as a simulated online social network.
func NewNetwork(g *Graph, opts ...NetworkOption) *Network { return osn.NewNetwork(g, opts...) }

// Backend is the pluggable ground-truth access layer a Network serves
// topology from: in-memory (NewMemBackend), memory-mapped disk CSR
// (OpenDiskBackend), or a simulated remote API with per-round-trip latency
// (NewRemoteSim). All implementations answer batched neighbor requests, the
// substrate of the client's frontier prefetch.
type Backend = osn.Backend

// MemBackend serves a heap-resident CSR graph (the classic behavior).
type MemBackend = osn.MemBackend

// DiskBackend serves a memory-mapped binary CSR file: million-node graphs
// open in O(1) and sample without holding their edges on the heap.
type DiskBackend = osn.DiskBackend

// RemoteSim wraps a backend with simulated per-round-trip latency and
// jitter; batch requests are answered over concurrent simulated
// connections, so batched prefetch turns queries saved into wall-clock
// saved.
type RemoteSim = osn.RemoteSim

// NewMemBackend wraps an in-memory graph as a Backend.
func NewMemBackend(g *Graph) MemBackend { return osn.NewMemBackend(g) }

// NewMemBackendWithAttrs wraps an in-memory graph plus per-node attribute
// tables as a Backend — the heap-decoded counterpart of a disk backend over
// a CSR file with embedded attributes.
func NewMemBackendWithAttrs(g *Graph, attrs map[string][]float64) MemBackend {
	return osn.NewMemBackendWithAttrs(g, attrs)
}

// NewDiskBackend wraps an opened CSR mapping as a Backend.
func NewDiskBackend(m *MappedCSR) DiskBackend { return osn.NewDiskBackend(m) }

// OpenDiskBackend opens a binary CSR file as a disk-backed Backend. Close
// the returned mapping when done with the network.
func OpenDiskBackend(path string) (DiskBackend, *MappedCSR, error) {
	return osn.OpenDiskBackend(path)
}

// NewRemoteSim wraps a backend with simulated access latency: every round
// trip sleeps latency ± jitter, and a k-node batch is answered over fanout
// concurrent connections (fanout <= 0 selects a default pool width).
func NewRemoteSim(inner Backend, latency, jitter time.Duration, fanout int) *RemoteSim {
	return osn.NewRemoteSim(inner, latency, jitter, fanout)
}

// NewNetworkOn wraps any access backend as a simulated online social
// network.
func NewNetworkOn(be Backend, opts ...NetworkOption) *Network { return osn.NewNetworkOn(be, opts...) }

// OpenBackend opens a graph file as an access backend by name — the shared
// selection logic of the wesample and weserve commands. kind is "mem" (CSR
// inputs are decoded to the heap, keeping embedded attribute tables so mem
// and disk present the same network for the same file), "disk" (memory-map
// a binary CSR in place), or "sim" (the mem/disk base wrapped with
// simulated per-round-trip latency ± jitter over a fanout-wide connection
// pool). Binary CSR files are auto-detected; plain files are read as edge
// lists. The returned cleanup releases any file mapping — call it once
// sampling is done.
func OpenBackend(path, kind string, latency, jitter time.Duration, fanout int) (Backend, func(), error) {
	noop := func() {}
	base := func() (Backend, func(), error) {
		if IsCSRFile(path) {
			be, m, err := OpenDiskBackend(path)
			if err != nil {
				return nil, nil, err
			}
			return be, func() { m.Close() }, nil
		}
		g, err := LoadEdgeList(path)
		if err != nil {
			return nil, nil, err
		}
		return NewMemBackend(g), noop, nil
	}
	switch kind {
	case "mem":
		if IsCSRFile(path) {
			g, attrs, err := LoadCSR(path)
			if err != nil {
				return nil, nil, err
			}
			return NewMemBackendWithAttrs(g, attrs), noop, nil
		}
		return base()
	case "disk":
		if !IsCSRFile(path) {
			return nil, nil, fmt.Errorf("-backend disk needs a binary CSR input (generate one with: wegen -format csr)")
		}
		return base()
	case "sim":
		inner, cleanup, err := base()
		if err != nil {
			return nil, nil, err
		}
		return NewRemoteSim(inner, latency, jitter, fanout), cleanup, nil
	}
	return nil, nil, fmt.Errorf("unknown backend %q (want mem, disk or sim)", kind)
}

// FaultSim wraps a backend with a deterministic, seeded fault schedule:
// transient errors, timeouts, rate-limit rejections with a retry-after hint,
// and full-outage windows — a pure function of (seed, attempt number), so a
// fixed seed reproduces the identical fault sequence.
type FaultSim = osn.FaultSim

// FaultConfig parameterizes a FaultSim.
type FaultConfig = osn.FaultConfig

// FaultError is one injected backend failure.
type FaultError = osn.FaultError

// ResilientBackend is the retry/backoff/circuit-breaker middleware over a
// fallible backend: transient faults are absorbed below the metered Client
// (retries never perturb sampling RNG or query charges), and policy
// exhaustion surfaces as a typed BackendUnavailableError that cancels the
// owning job context.
type ResilientBackend = osn.ResilientBackend

// ResilientPolicy parameterizes a ResilientBackend; zero fields select
// defaults.
type ResilientPolicy = osn.ResilientPolicy

// BackendUnavailableError is the resilience layer's typed give-up error.
type BackendUnavailableError = osn.BackendUnavailableError

// BreakerState is the circuit-breaker state (closed, open, half-open).
type BreakerState = osn.BreakerState

// NewFaultSim wraps inner with a deterministic fault schedule.
func NewFaultSim(inner Backend, cfg FaultConfig) (*FaultSim, error) {
	return osn.NewFaultSim(inner, cfg)
}

// NewResilientBackend wraps inner (typically a FaultSim or a live remote
// backend) with retry/backoff/circuit-breaker middleware.
func NewResilientBackend(inner Backend, pol ResilientPolicy) *ResilientBackend {
	return osn.NewResilientBackend(inner, pol)
}

// WithFailureCancel attaches a cancel-cause hook to ctx; a ResilientBackend
// below a Client bound to this context cancels it with the typed
// BackendUnavailableError when its retry policy gives up.
func WithFailureCancel(ctx context.Context, cancel context.CancelCauseFunc) context.Context {
	return osn.WithFailureCancel(ctx, cancel)
}

// FaultOptions is the CLI-friendly fault-injection surface shared by the
// wesample and weserve commands: a flat fault rate (split evenly between
// transient and timeout faults with a dash of rate limiting), a schedule
// seed, an optional "start+dur" outage window, and a retry cap.
type FaultOptions struct {
	// Rate is the total per-round-trip fault probability in [0, 1); 0
	// disables injection entirely (the backend is not wrapped).
	Rate float64
	// Seed drives the deterministic fault schedule (default 1).
	Seed int64
	// Outage, when non-empty, is a wall-clock outage window "start+dur"
	// (e.g. "2s+500ms") measured from backend construction.
	Outage string
	// Retries caps the resilience middleware's attempts per access
	// (0 selects the policy default).
	Retries int
}

// WrapFaults wraps be with a FaultSim and a ResilientBackend per opts. With
// a zero Rate and no Outage it returns be unchanged — the fault-free path
// stays bit-identical to an unwrapped backend. The returned FaultSim and
// ResilientBackend are non-nil only when wrapping happened.
func WrapFaults(be Backend, opts FaultOptions) (Backend, *FaultSim, *ResilientBackend, error) {
	if opts.Rate == 0 && opts.Outage == "" {
		return be, nil, nil, nil
	}
	if opts.Rate < 0 || opts.Rate >= 1 {
		return nil, nil, nil, fmt.Errorf("fault rate %v out of [0, 1)", opts.Rate)
	}
	cfg := FaultConfig{
		Seed: opts.Seed,
		// Split the flat rate: mostly transient, some timeouts, a sliver of
		// rate limiting — the mix a live platform presents.
		TransientRate: opts.Rate * 0.6,
		TimeoutRate:   opts.Rate * 0.3,
		RateLimitRate: opts.Rate * 0.1,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if opts.Outage != "" {
		start, dur, err := parseOutage(opts.Outage)
		if err != nil {
			return nil, nil, nil, err
		}
		cfg.OutageStart, cfg.OutageDur = start, dur
	}
	fs, err := NewFaultSim(be, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	res := NewResilientBackend(fs, ResilientPolicy{MaxRetries: opts.Retries})
	return res, fs, res, nil
}

// parseOutage parses a "start+dur" wall-clock outage window.
func parseOutage(s string) (start, dur time.Duration, err error) {
	a, b, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("outage %q: want start+dur (e.g. 2s+500ms)", s)
	}
	if start, err = time.ParseDuration(a); err != nil {
		return 0, 0, fmt.Errorf("outage start: %w", err)
	}
	if dur, err = time.ParseDuration(b); err != nil {
		return 0, 0, fmt.Errorf("outage duration: %w", err)
	}
	if start < 0 || dur <= 0 {
		return 0, 0, fmt.Errorf("outage %q: want start >= 0 and dur > 0", s)
	}
	return start, dur, nil
}

// NewClient creates a metered client over a network. rng may be a
// *rand.Rand or a NewFastRNG generator.
func NewClient(net *Network, mode CostMode, rng RNG) *Client {
	return osn.NewClient(net, mode, rng)
}

// SharedCache is a concurrency-safe neighbor cache plus global unique-node
// accounting that several Clients (one per worker goroutine) attach to:
// across all attached clients each distinct node is fetched — and, under
// CostUniqueNodes, charged — exactly once.
type SharedCache = osn.SharedCache

// NewSharedCache returns an empty shared neighbor cache.
func NewSharedCache() *SharedCache { return osn.NewSharedCache() }

// NewClientShared creates a metered client attached to a shared neighbor
// cache. Clients of the same cache may be used from different goroutines;
// each keeps its own cost meter while the cache meters the fleet-wide cost.
func NewClientShared(net *Network, mode CostMode, rng RNG, sc *SharedCache) *Client {
	return osn.NewClientShared(net, mode, rng, sc)
}

// WithAttribute attaches a numeric per-node attribute table.
func WithAttribute(name string, values []float64) NetworkOption {
	return osn.WithAttribute(name, values)
}

// WithAttrFunc attaches a lazily-computed, memoized per-node attribute.
func WithAttrFunc(name string, fn func(node int) float64) NetworkOption {
	return osn.WithAttrFunc(name, fn)
}

// WithRestriction installs a neighbor-list access restriction (§6.3.1).
func WithRestriction(r Restriction) NetworkOption { return osn.WithRestriction(r) }

// WithRateLimit simulates a query rate limit (e.g. 15 requests/15 min).
func WithRateLimit(perWindow int, window time.Duration) NetworkOption {
	return osn.WithRateLimit(perWindow, window)
}

// Restriction models the neighbor-list access restrictions of §6.3.1.
type Restriction = osn.Restriction

// RandomK is restriction type (1): a fresh random k-subset per invocation.
type RandomK = osn.RandomK

// FixedK is restriction type (2): a fixed random k-subset per node.
type FixedK = osn.FixedK

// TruncateL is restriction type (3): at most the first l neighbors.
type TruncateL = osn.TruncateL

// EstimateDegreeMarkRecapture estimates a node's true degree under a
// RandomK restriction with the Petersen mark-recapture estimator.
func EstimateDegreeMarkRecapture(c *Client, v, rounds int) (float64, error) {
	return osn.EstimateDegreeMarkRecapture(c, v, rounds)
}
