package walknotwait

import (
	"math/rand"

	"repro/internal/agg"
	"repro/internal/linalg"
	"repro/internal/stats"
)

// EstimateMean estimates the population AVG of an attribute from sampled
// nodes, choosing the correct estimator for the design's target
// distribution: arithmetic mean for uniform targets (MHRW), the
// importance-weighted ratio estimator for degree-proportional targets (SRW).
func EstimateMean(c *Client, d Design, attr string, nodes []int) (float64, error) {
	return agg.EstimateMean(c, d, attr, nodes)
}

// RelativeError is the paper's error measure |x̃ − x| / x.
func RelativeError(estimate, truth float64) float64 { return agg.RelativeError(estimate, truth) }

// EffectiveSampleSize implements Equation 25 for correlated one-long-run
// samples: M = h / (1 + 2·Σ ρ_k).
func EffectiveSampleSize(xs []float64, maxLag int) (float64, error) {
	return agg.EffectiveSampleSize(xs, maxLag)
}

// Autocorrelation returns the lag-k sample autocorrelation of a series.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	return agg.Autocorrelation(xs, lag)
}

// EstimateNumNodes estimates the network size from degree-biased samples via
// the Katzir–Liberty–Somekh collision estimator (the paper's citation [20]).
func EstimateNumNodes(nodes []int, degrees []float64) (float64, error) {
	return agg.EstimateNumNodes(nodes, degrees)
}

// EstimateNumEdges estimates the edge count from degree-biased samples.
func EstimateNumEdges(nodes []int, degrees []float64) (float64, error) {
	return agg.EstimateNumEdges(nodes, degrees)
}

// TransitionMatrix is a sparse row-stochastic Markov transition matrix over
// graph nodes, used by the full-topology oracles (exact p_t evolution,
// burn-in, spectral gap). These require the whole graph and exist for
// analysis and validation, not for query-limited sampling.
type TransitionMatrix = linalg.Matrix

// NewSRWMatrix builds the SRW transition matrix of a graph.
func NewSRWMatrix(g *Graph) *TransitionMatrix { return linalg.NewSRW(g) }

// NewMHRWMatrix builds the MHRW (uniform-target) transition matrix.
func NewMHRWMatrix(g *Graph) *TransitionMatrix { return linalg.NewMHRW(g) }

// Lazify returns α·I + (1−α)·T: same stationary distribution, guaranteed
// aperiodicity.
func Lazify(m *TransitionMatrix, alpha float64) *TransitionMatrix {
	return linalg.Lazify(m, alpha)
}

// SRWStationary returns π(v) = d(v)/2|E|, the SRW stationary distribution.
func SRWStationary(g *Graph) ([]float64, error) { return linalg.SRWStationary(g) }

// UniformStationary returns the uniform distribution over n nodes.
func UniformStationary(n int) []float64 { return linalg.UniformStationary(n) }

// LInfDistance returns the ℓ∞ distance between two distributions.
func LInfDistance(p, q []float64) (float64, error) { return stats.LInf(p, q) }

// TotalVariation returns the total-variation distance between two
// distributions.
func TotalVariation(p, q []float64) (float64, error) { return stats.TotalVariation(p, q) }

// KLDivergence returns D(p‖q) in nats.
func KLDivergence(p, q []float64) (float64, error) { return stats.KL(p, q) }

// EmpiricalDistribution converts sampled node ids into an empirical
// distribution over n nodes.
func EmpiricalDistribution(samples []int, n int) ([]float64, error) {
	return stats.Empirical(samples, n)
}

// SpectralGap computes λ = 1 − s₂ of a reversible transition matrix with
// stationary distribution pi, by deflated power iteration.
func SpectralGap(m *TransitionMatrix, pi []float64, iters int, rng *rand.Rand) (float64, error) {
	return m.SpectralGap(pi, iters, rng)
}
