package walknotwait_test

// RemoteSim determinism property (ISSUE 4 satellite): at fixed (seed,
// fanout, jitter) a repeated run must reproduce not only the sample
// sequence but the backend's timing meters — the round-trip count and the
// total simulated latency. The jitter stream is derived from an atomic
// call counter through a splitmix64 finalizer, so the total latency is a
// pure function of the round-trip count (the sum over positions 1..N is
// scheduling-independent), and for a single client the round-trip count is
// fixed by its deterministic access pattern — including batched requests,
// which charge exactly one round trip per element however the fanout
// connection pool schedules them.
//
// The timing equality is asserted for single-client runs only: a parallel
// worker fleet can race two concurrent misses of the same node to the
// backend (the query meters dedupe exactly — property-tested in
// internal/osn — but the wire sees both), so its round-trip count is
// scheduling-dependent by design. Parallel runs assert the sample-sequence
// half of the contract.

import (
	"math/rand"
	"testing"
	"time"

	wnw "repro"
)

func remoteSimRun(t *testing.T, seed int64, fanout int, jitter time.Duration, workers int) ([]int, int64, time.Duration) {
	t.Helper()
	g := wnw.NewBarabasiAlbert(800, 3, rand.New(rand.NewSource(42)))
	sim := wnw.NewRemoteSim(wnw.NewMemBackend(g), 300*time.Microsecond, jitter, fanout)
	net := wnw.NewNetworkOn(sim)
	rng := rand.New(rand.NewSource(seed))
	c := wnw.NewClient(net, wnw.CostUniqueNodes, rng)
	s, err := wnw.NewWalkEstimate(c, wnw.WEConfig{
		Design:      wnw.SimpleRandomWalk(),
		Start:       0,
		WalkLength:  9,
		UseCrawl:    true,
		UseWeighted: true,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var res wnw.SampleResult
	if workers > 1 {
		res, err = s.SampleNParallel(12, workers)
	} else {
		res, err = s.SampleN(12)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res.Nodes, sim.RoundTrips(), sim.SimulatedWait()
}

func TestRemoteSimDeterministicAcrossRuns(t *testing.T) {
	cases := []struct {
		name    string
		seed    int64
		fanout  int
		jitter  time.Duration
		workers int
		timing  bool // assert round-trip/latency equality too
	}{
		{"sequential", 7, 8, 100 * time.Microsecond, 1, true},
		{"sequential-no-jitter-wide-fanout", 3, 32, 0, 1, true},
		{"parallel", 7, 8, 100 * time.Microsecond, 4, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nodes0, rtts0, wait0 := remoteSimRun(t, tc.seed, tc.fanout, tc.jitter, tc.workers)
			for rep := 1; rep < 3; rep++ {
				nodes, rtts, wait := remoteSimRun(t, tc.seed, tc.fanout, tc.jitter, tc.workers)
				if len(nodes) != len(nodes0) {
					t.Fatalf("rep %d: %d samples vs %d", rep, len(nodes), len(nodes0))
				}
				for i := range nodes0 {
					if nodes[i] != nodes0[i] {
						t.Fatalf("rep %d: sample %d = %d, want %d", rep, i, nodes[i], nodes0[i])
					}
				}
				if tc.timing && rtts != rtts0 {
					t.Fatalf("rep %d: %d round trips, want %d", rep, rtts, rtts0)
				}
				if tc.timing && wait != wait0 {
					t.Fatalf("rep %d: simulated wait %v, want %v", rep, wait, wait0)
				}
			}
			if rtts0 == 0 || wait0 == 0 {
				t.Fatalf("degenerate run: %d round trips, %v wait", rtts0, wait0)
			}
		})
	}
}
